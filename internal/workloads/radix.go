package workloads

import (
	"fmt"
	"sort"

	"slacksim/internal/loader"
)

// radix is the SPLASH-2 Radix sort pattern: per-thread local histograms, a
// serial rank computation, and a conflict-free parallel scatter (permute)
// phase, with barriers between phases. Keys are 16-bit values in 64-bit
// slots, sorted in two 8-bit passes so the result lands back in src.

func radixN(scale int) int { return 4096 * scale }

const (
	radixRadix  = 256
	radixPasses = 2
	radixMaxT   = 64
)

func radixSource(scale int) string {
	params := fmt.Sprintf(".equ N, %d\n.equ R, %d\n.equ P, %d\n.equ MAXT, %d\n",
		radixN(scale), radixRadix, radixPasses, radixMaxT)
	body := `
bench_init:
    ret

# work(a0 = tid)
work:
    mv   r24, a0
    la   r25, _nthreads
    ld   r25, 0(r25)              # T
` + chunkBounds("N", "r24", "r26", "r27", "r8", "r9", "radix") + `
    la   r22, src                 # current source
    la   r23, dst                 # current destination
    li   r20, 0                   # pass
    li   r21, 0                   # shift
rx_pass:
    li   r8, P
    bge  r20, r8, rx_done
    # ---- zero own histogram row: hist + tid*R*8
    li   r9, R*8
    mul  r10, r24, r9
    la   r11, hist
    add  r11, r11, r10            # my hist row
    li   r12, 0
rx_zero:
    li   r8, R
    bge  r12, r8, rx_zero_done
    slli r13, r12, 3
    add  r14, r11, r13
    sd   zero, 0(r14)
    addi r12, r12, 1
    j    rx_zero
rx_zero_done:
    # ---- local histogram over [lo,hi)
    mv   r12, r26
rx_hist:
    bge  r12, r27, rx_hist_done
    slli r13, r12, 3
    add  r14, r22, r13
    ld   r15, 0(r14)              # key
    srl  r16, r15, r21
    andi r16, r16, R-1            # digit
    slli r16, r16, 3
    add  r17, r11, r16
    ld   r18, 0(r17)
    addi r18, r18, 1
    sd   r18, 0(r17)
    addi r12, r12, 1
    j    rx_hist
rx_hist_done:
    la   a0, _bar
    syscall SYS_BARRIER
    # ---- rank: thread 0 computes global offsets
    bnez r24, rx_rank_done
    li   r12, 0                   # running offset
    li   r13, 0                   # digit
rx_rank_d:
    li   r8, R
    bge  r13, r8, rx_rank_done
    li   r14, 0                   # thread
rx_rank_t:
    bge  r14, r25, rx_rank_t_done
    li   r9, R*8
    mul  r15, r14, r9
    slli r16, r13, 3
    add  r15, r15, r16
    la   r17, offs
    add  r18, r17, r15
    sd   r12, 0(r18)
    la   r17, hist
    add  r18, r17, r15
    ld   r19, 0(r18)
    add  r12, r12, r19
    addi r14, r14, 1
    j    rx_rank_t
rx_rank_t_done:
    addi r13, r13, 1
    j    rx_rank_d
rx_rank_done:
    la   a0, _bar
    syscall SYS_BARRIER
    # ---- scatter own chunk in order
    li   r9, R*8
    mul  r10, r24, r9
    la   r11, offs
    add  r11, r11, r10            # my offs row
    mv   r12, r26
rx_scat:
    bge  r12, r27, rx_scat_done
    slli r13, r12, 3
    add  r14, r22, r13
    ld   r15, 0(r14)              # key
    srl  r16, r15, r21
    andi r16, r16, R-1
    slli r16, r16, 3
    add  r17, r11, r16
    ld   r18, 0(r17)              # slot
    addi r19, r18, 1
    sd   r19, 0(r17)
    slli r18, r18, 3
    add  r18, r23, r18
    sd   r15, 0(r18)
    addi r12, r12, 1
    j    rx_scat
rx_scat_done:
    la   a0, _bar
    syscall SYS_BARRIER
    # swap src/dst registers locally
    mv   r8, r22
    mv   r22, r23
    mv   r23, r8
    addi r20, r20, 1
    addi r21, r21, 8
    j    rx_pass
rx_done:
    ret

bench_fini:
    la   a0, done_msg
    syscall SYS_PRINT_STR
    ret

.data
.align 8
done_msg: .asciiz "radix-ok"
.align 8
src:  .space N*8
dst:  .space N*8
hist: .space MAXT*R*8
offs: .space MAXT*R*8
`
	return wrapParallel(params, body)
}

func radixInput(n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64((uint64(i) * 2654435761) & 0xFFFF)
	}
	return keys
}

func radixInit(im *loader.Image, scale int) error {
	return pokeInts(im, "src", radixInput(radixN(scale)))
}

func radixVerify(im *loader.Image, output string, scale int) error {
	if output != "radix-ok" {
		return fmt.Errorf("radix: output %q, want radix-ok", output)
	}
	n := radixN(scale)
	want := radixInput(n)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got, err := peekInts(im, "src", n)
	if err != nil {
		return err
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("radix: src[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}

func init() {
	register(&Workload{
		Name:        "radix",
		Description: "parallel radix sort: local histograms, serial rank, conflict-free scatter (SPLASH-2 Radix analogue)",
		InputDesc: func(scale int) string {
			return fmt.Sprintf("%dK 16-bit keys", radixN(scale)/1024)
		},
		Source: radixSource,
		Init:   radixInit,
		Verify: radixVerify,
	})
}
