package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine.events")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}
	if r.Counter("engine.events") != c {
		t.Error("second lookup should return the same counter")
	}
	g := r.Gauge("engine.global")
	g.Set(5)
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge after SetMax(3) = %d, want 5", got)
	}
	g.SetMax(8)
	if got := g.Value(); got != 8 {
		t.Errorf("gauge after SetMax(8) = %d, want 8", got)
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// Every operation on a nil handle must be a safe no-op.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Error("nil handles must read as zero")
	}
	if h.Mean() != 0 {
		t.Error("nil histogram mean must be 0")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry dump = %q, want empty", buf.String())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("slack")
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Errorf("count = %d, want 8", got)
	}
	if got := h.Sum(); got != 106 {
		t.Errorf("sum = %d, want 106", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("max = %d, want 100", got)
	}
	s := h.Snapshot()
	if s.Buckets[0] != 2 { // 0 and -5
		t.Errorf("bucket 0 = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[1] != 2 { // the two 1s
		t.Errorf("bucket 1 = %d, want 2", s.Buckets[1])
	}
	if q := s.Quantile(0.5); q <= 0 || q > 4 {
		t.Errorf("p50 = %d, want in (0, 4]", q)
	}
	if q := s.Quantile(1.0); q < 100 {
		t.Errorf("p100 = %d, want >= 100", q)
	}
	if q := s.Quantile(0); q != 0 {
		t.Errorf("p0 = %d, want 0", q)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 40, 41}, {1<<62 + 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 8
	const per = 10000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist")
			g := r.Gauge("max")
			for j := 0; j < per; j++ {
				c.Inc()
				h.Observe(int64(j))
				g.SetMax(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("hist").Count(); got != workers*per {
		t.Errorf("hist count = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("max").Value(); got != per-1 {
		t.Errorf("gauge = %d, want %d", got, per-1)
	}
}

func TestWriteSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.gauge").Set(1)
	r.Histogram("c.hist").Observe(4)
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "a.gauge") ||
		!strings.HasPrefix(lines[1], "b.count") ||
		!strings.HasPrefix(lines[2], "c.hist") {
		t.Errorf("dump not sorted:\n%s", buf.String())
	}
	if !strings.Contains(lines[2], "count=1") {
		t.Errorf("histogram line missing summary: %q", lines[2])
	}
}

func BenchmarkDisabledCounterAdd(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
