package metrics

import "testing"

func workerSnapshot(hits, depth int64) Snapshot {
	r := NewRegistry()
	r.Counter("cache.l2.hits").Add(hits)
	r.Gauge("event.shardq.depth").Set(depth)
	h := r.Histogram("mem.lat")
	h.Observe(10)
	h.Observe(100)
	return r.Snapshot()
}

func TestFoldInstallsUnderPrefix(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("engine.events.processed").Add(7)
	parent.Fold("worker0.", workerSnapshot(42, 5))

	if got := parent.Counter("worker0.cache.l2.hits").Value(); got != 42 {
		t.Errorf("folded counter = %d, want 42", got)
	}
	if got := parent.Gauge("worker0.event.shardq.depth").Value(); got != 5 {
		t.Errorf("folded gauge = %d, want 5", got)
	}
	if got := parent.Histogram("worker0.mem.lat").Snapshot().Count; got != 2 {
		t.Errorf("folded histogram count = %d, want 2", got)
	}
	// The parent's own metrics are untouched.
	if got := parent.Counter("engine.events.processed").Value(); got != 7 {
		t.Errorf("parent counter disturbed: %d", got)
	}
}

func TestFoldIsReplaceNotAccumulate(t *testing.T) {
	parent := NewRegistry()
	// A periodic snapshot followed by the final one must land on the
	// final values — cumulative remote counters would double otherwise.
	parent.Fold("worker0.", workerSnapshot(10, 3))
	parent.Fold("worker0.", workerSnapshot(25, 1))
	if got := parent.Counter("worker0.cache.l2.hits").Value(); got != 25 {
		t.Errorf("refolded counter = %d, want 25 (replace semantics)", got)
	}
	if got := parent.Gauge("worker0.event.shardq.depth").Value(); got != 1 {
		t.Errorf("refolded gauge = %d, want 1", got)
	}
	if got := parent.Histogram("worker0.mem.lat").Snapshot().Count; got != 2 {
		t.Errorf("refolded histogram count = %d, want 2 (replace semantics)", got)
	}
}

func TestFoldPerWorkerIsolation(t *testing.T) {
	parent := NewRegistry()
	parent.Fold("worker0.", workerSnapshot(1, 0))
	parent.Fold("worker1.", workerSnapshot(2, 0))
	if parent.Counter("worker0.cache.l2.hits").Value() != 1 ||
		parent.Counter("worker1.cache.l2.hits").Value() != 2 {
		t.Error("per-worker prefixes collided")
	}
}

func TestFoldNilAndEmpty(t *testing.T) {
	var r *Registry
	r.Fold("worker0.", workerSnapshot(1, 1)) // must not panic
	parent := NewRegistry()
	parent.Fold("worker0.", Snapshot{}) // empty snapshot folds to nothing
	if n := len(parent.Snapshot().Counters); n != 0 {
		t.Errorf("empty fold created %d counters", n)
	}
}
