//go:build !race

package metrics_test

// raceEnabled reports whether the race detector is compiled in (timing
// tests skip themselves under it).
const raceEnabled = false
