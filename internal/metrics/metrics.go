// Package metrics is the engine's runtime metrics registry: named atomic
// counters, gauges, and power-of-two histograms. Its design constraint is
// the disabled path: every handle type treats a nil receiver as a no-op,
// so instrumentation sites hold possibly-nil handles and pay one
// predictable nil check per operation when metrics are off — verified to
// be in the noise of a full simulation by the package's overhead test.
//
// The enabled path is lock-free too: handles are atomics, and the
// registry lock is taken only at registration and dump time, never per
// operation. Handles may therefore be updated from any number of
// goroutines concurrently.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; a nil
// *Registry is: every lookup on it returns a nil handle, whose operations
// are no-ops. That is the disabled-instrumentation fast path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns nil (a valid no-op handle).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use; nil on
// a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistSnapshot
}

// Snapshot copies the registry's current values. Safe during updates
// (each value is read atomically; the set as a whole is not a consistent
// cut, which is fine for run-end reporting).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Write dumps every metric, sorted by name, one per line.
func (r *Registry) Write(w io.Writer) error {
	s := r.Snapshot()
	type line struct{ name, text string }
	var lines []line
	for name, v := range s.Counters {
		lines = append(lines, line{name, fmt.Sprintf("%-40s %d", name, v)})
	}
	for name, v := range s.Gauges {
		lines = append(lines, line{name, fmt.Sprintf("%-40s %d", name, v)})
	}
	for name, h := range s.Histograms {
		lines = append(lines, line{name, fmt.Sprintf("%-40s %s", name, h)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l.text); err != nil {
			return err
		}
	}
	return nil
}

// Counter is a monotonically increasing atomic counter. All methods are
// no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value metric. All methods are no-ops on a nil
// receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count: bucket 0 holds values <= 0, bucket i
// holds values with bit length i (i.e. [2^(i-1), 2^i)), up to 2^62 and
// beyond in the last bucket.
const histBuckets = 64

// Histogram is a lock-free power-of-two-bucketed histogram of int64
// observations. All methods are no-ops on a nil receiver.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.max.SetMax(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Max returns the largest observation (0 when empty or all <= 0).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Value()
}

// Snapshot returns a copy of the histogram's state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Value()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time histogram copy.
type HistSnapshot struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) from
// the bucket boundaries: the smallest power-of-two boundary below which
// at least q of the observations fall. NaN-free: returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen > target {
			if i == 0 {
				return 0
			}
			return int64(1) << uint(i) // upper edge of bucket i
		}
	}
	return s.Max
}

// Mean returns the snapshot's mean observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (s HistSnapshot) String() string {
	return fmt.Sprintf("count=%d mean=%.1f p50<=%d p99<=%d max=%d",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.99), s.Max)
}
