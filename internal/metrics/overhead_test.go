package metrics_test

import (
	"sync"
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
	"slacksim/internal/metrics"
	"slacksim/internal/trace"
	"slacksim/internal/workloads"
)

// This file bounds the observability subsystem's disabled-path overhead.
// The instrumentation sites in the engine's hot loops cost, when tracing
// and metrics are off, a handful of nil checks per simulated core-cycle.
// TestDisabledOverheadBudget measures (a) the host cost of one simulated
// core-cycle in a real parallel run and (b) the measured cost of a
// disabled-path operation, and asserts that an over-generous per-cycle
// site budget stays under 5% of the per-cycle cost. The paired
// BenchmarkParallelObservability{Off,On} benchmarks give the end-to-end
// numbers recorded in bench_results.txt.

var (
	overheadOnce sync.Once
	overheadProg *asm.Program
	overheadWl   *workloads.Workload
	overheadErr  error
)

func buildMachine(tb testing.TB) *core.Machine {
	tb.Helper()
	overheadOnce.Do(func() {
		overheadWl, overheadErr = workloads.Get("fft")
		if overheadErr != nil {
			return
		}
		overheadProg, overheadErr = asm.Assemble(overheadWl.Source(1), asm.Options{})
	})
	if overheadErr != nil {
		tb.Fatal(overheadErr)
	}
	cfg := core.Config{
		NumCores:  4,
		CPU:       cpu.DefaultConfig(),
		Cache:     cache.DefaultConfig(4),
		MaxCycles: 500_000_000,
	}
	m, err := core.NewMachine(overheadProg, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := overheadWl.Init(m.Image(), 1); err != nil {
		tb.Fatal(err)
	}
	return m
}

// tickedCycles is the number of (core, cycle) pairs the run simulated
// tick-by-tick (skipped fast-forward cycles pay no per-tick cost).
func tickedCycles(res *core.Result) int64 {
	var n int64
	for _, st := range res.CoreStats {
		n += st.Cycles + st.IdleCycles
	}
	return n
}

func TestDisabledOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	if raceEnabled {
		t.Skip("timing-sensitive; race instrumentation distorts both sides")
	}

	// (a) Host cost of a simulated core-cycle with instrumentation
	// disabled. wall/ticked underestimates the true per-core-cycle cost
	// whenever core threads overlap on the host, which only makes the
	// computed overhead fraction an overestimate — the safe direction.
	m := buildMachine(t)
	res, err := m.RunParallel(core.SchemeS9)
	if err != nil {
		t.Fatal(err)
	}
	ticked := tickedCycles(res)
	if ticked == 0 {
		t.Fatal("no ticked cycles")
	}
	perCycleNS := float64(res.Wall.Nanoseconds()) / float64(ticked)
	if perCycleNS <= 0 {
		t.Fatalf("implausible per-cycle cost %.2f ns", perCycleNS)
	}

	// (b) Cost of one disabled-path operation (nil-handle update).
	br := testing.Benchmark(func(b *testing.B) {
		var c *metrics.Counter
		var h *metrics.Histogram
		var w *trace.Writer
		for i := 0; i < b.N; i++ {
			c.Add(1)
			h.Observe(int64(i))
			w.Count(trace.KSlack, int64(i))
		}
	})
	// Three nil-handle ops per benchmark iteration.
	nilOpNS := float64(br.T.Nanoseconds()) / float64(br.N) / 3

	// The engine's disabled path executes at most a few nil checks per
	// ticked cycle: coreLoop's batched inner loop carries none at all (the
	// sampling test runs once per outer iteration, masked to 1 in 64), and
	// the manager's per-round checks amortise over the cores' cycles plus
	// one per processed event. The latency-attribution stamps add one
	// m.met nil check per memory-event send (Env.Send) and one SendNS==0
	// check per delivery — both per-event, not per-cycle. Budget 10 —
	// still several times the real amortised count.
	const opsPerCycle = 10
	overhead := opsPerCycle * nilOpNS / perCycleNS
	t.Logf("per-cycle cost %.1f ns, disabled op %.3f ns, budget %d ops/cycle -> overhead %.3f%%",
		perCycleNS, nilOpNS, opsPerCycle, overhead*100)
	if overhead >= 0.05 {
		t.Errorf("disabled-instrumentation budget %.2f%% >= 5%%", overhead*100)
	}
}

func benchmarkParallel(b *testing.B, attach bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := buildMachine(b)
		if attach {
			m.EnableTrace(trace.New())
			m.EnableMetrics(metrics.NewRegistry())
		}
		b.StartTimer()
		res, err := m.RunParallel(core.SchemeS9)
		if err != nil {
			b.Fatal(err)
		}
		if res.Aborted {
			b.Fatal("run aborted")
		}
	}
}

// BenchmarkParallelObservabilityOff is the engine with the subsystem
// compiled in but disabled — compare against the seed's BenchmarkParallel
// numbers (bench_results.txt) for the cross-version check.
func BenchmarkParallelObservabilityOff(b *testing.B) { benchmarkParallel(b, false) }

// BenchmarkParallelObservabilityOn measures the enabled-path cost.
func BenchmarkParallelObservabilityOn(b *testing.B) { benchmarkParallel(b, true) }
