package metrics

// Federation: a remote worker snapshots its own registry and ships the
// Snapshot over the wire; the parent folds it into its registry under a
// per-worker prefix ("worker0."), so one scrape covers the whole fleet.
// Folding is idempotent — each snapshot replaces the previous one for the
// same prefix — which makes periodic refreshes and the final stats frame
// interchangeable.

// store overwrites the counter (federation only: a folded counter mirrors
// the remote cumulative value rather than accumulating locally).
func (c *Counter) store(v int64) {
	if c != nil {
		c.v.Store(v)
	}
}

// SetSnapshot overwrites the histogram's state from a snapshot. Each cell
// is stored atomically; the set as a whole is as consistent as the
// snapshot was, which is what scrapes expect.
func (h *Histogram) SetSnapshot(s HistSnapshot) {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(s.Buckets[i])
	}
	h.count.Store(s.Count)
	h.sum.Store(s.Sum)
	h.max.Set(s.Max)
}

// Fold installs every metric of snap into the registry under prefix,
// replacing previous values with the same names. A nil registry or an
// empty snapshot folds to nothing.
func (r *Registry) Fold(prefix string, snap Snapshot) {
	if r == nil {
		return
	}
	for name, v := range snap.Counters {
		r.Counter(prefix + name).store(v)
	}
	for name, v := range snap.Gauges {
		r.Gauge(prefix + name).Set(v)
	}
	for name, hs := range snap.Histograms {
		r.Histogram(prefix + name).SetSnapshot(hs)
	}
}
