// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each benchmark iteration is a complete simulation, so run with
//
//	go test -bench=. -benchtime=1x .
//
// Reported custom metrics:
//
//	KIPS          simulated kilo-instructions per wall second (Table 2)
//	speedup       wall-time speedup over the CC-on-1-host-core baseline (Figure 8)
//	err_%         relative simulated-execution-time error vs the serial
//	              cycle-by-cycle reference (Table 3)
//	cycles        simulated execution time of the region of interest
package slacksim_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/core"
	"slacksim/internal/harness"
	"slacksim/internal/stats"
	"slacksim/internal/workloads"
)

func asmAssemble(src string) (*asm.Program, error) { return asm.Assemble(src, asm.Options{}) }

// paperWorkloads are the four benchmarks of the paper's Table 2.
func paperWorkloads() []string {
	var names []string
	for _, w := range workloads.Paper() {
		names = append(names, w.Name)
	}
	return names
}

func newRunner(b *testing.B, names []string) *harness.Runner {
	b.Helper()
	r, err := harness.NewRunner(harness.Options{
		Workloads:   names,
		TargetCores: 8,
		Verify:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// baselineCache shares baseline runs across benchmark functions within one
// `go test -bench` invocation.
var (
	baselineMu    sync.Mutex
	baselineRuns  = map[string]*harness.Run{}
	referenceRuns = map[string]*harness.Run{}
)

func baseline(b *testing.B, r *harness.Runner, name string) *harness.Run {
	b.Helper()
	baselineMu.Lock()
	defer baselineMu.Unlock()
	if run, ok := baselineRuns[name]; ok {
		return run
	}
	run, err := r.Baseline(name)
	if err != nil {
		b.Fatal(err)
	}
	baselineRuns[name] = run
	return run
}

func reference(b *testing.B, r *harness.Runner, name string) *harness.Run {
	b.Helper()
	baselineMu.Lock()
	defer baselineMu.Unlock()
	if run, ok := referenceRuns[name]; ok {
		return run
	}
	run, err := r.SerialReference(name)
	if err != nil {
		b.Fatal(err)
	}
	referenceRuns[name] = run
	return run
}

// BenchmarkTable2BaselineKIPS reproduces Table 2: the cycle-by-cycle
// simulation throughput with all simulation threads on one host core, per
// benchmark.
func BenchmarkTable2BaselineKIPS(b *testing.B) {
	for _, name := range paperWorkloads() {
		name := name
		b.Run(name, func(b *testing.B) {
			r := newRunner(b, []string{name})
			for i := 0; i < b.N; i++ {
				run, err := r.Baseline(name)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.Result.KIPS(), "KIPS")
				b.ReportMetric(float64(run.Result.ROICycles()), "cycles")
			}
		})
	}
}

// BenchmarkFigure8Speedup reproduces Figure 8(a-d): the wall-time speedup
// of every scheme over the 1-host-core cycle-by-cycle baseline, per
// benchmark (at this host's maximum usable parallelism).
func BenchmarkFigure8Speedup(b *testing.B) {
	schemes := []core.Scheme{
		core.SchemeCC, core.SchemeQ10, core.SchemeL10,
		core.SchemeS9, core.SchemeS9x, core.SchemeS100, core.SchemeSU,
	}
	for _, name := range paperWorkloads() {
		for _, s := range schemes {
			name, s := name, s
			b.Run(fmt.Sprintf("%s/%v", name, s), func(b *testing.B) {
				r := newRunner(b, []string{name})
				base := baseline(b, r, name)
				hc := r.Options().HostCores
				host := hc[len(hc)-1]
				for i := 0; i < b.N; i++ {
					run, err := r.RunOne(name, s, host)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(base.Result.Wall.Seconds()/run.Result.Wall.Seconds(), "speedup")
					b.ReportMetric(float64(run.Result.ROICycles()), "cycles")
				}
			})
		}
	}
}

// BenchmarkFigure8eHarmonicMean reproduces Figure 8(e): the harmonic mean
// of the benchmark speedups per scheme.
func BenchmarkFigure8eHarmonicMean(b *testing.B) {
	schemes := []core.Scheme{core.SchemeCC, core.SchemeQ10, core.SchemeS9, core.SchemeSU}
	names := paperWorkloads()
	for _, s := range schemes {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			r := newRunner(b, names)
			hc := r.Options().HostCores
			host := hc[len(hc)-1]
			for i := 0; i < b.N; i++ {
				var speedups []float64
				for _, name := range names {
					base := baseline(b, r, name)
					run, err := r.RunOne(name, s, host)
					if err != nil {
						b.Fatal(err)
					}
					speedups = append(speedups, base.Result.Wall.Seconds()/run.Result.Wall.Seconds())
				}
				b.ReportMetric(stats.HarmonicMean(speedups), "hmean-speedup")
			}
		})
	}
}

// BenchmarkTable3Errors reproduces Table 3: the relative error in simulated
// execution time of the optimistic schemes versus the deterministic serial
// reference, per benchmark.
func BenchmarkTable3Errors(b *testing.B) {
	schemes := []core.Scheme{core.SchemeS9, core.SchemeS100, core.SchemeSU}
	for _, name := range paperWorkloads() {
		for _, s := range schemes {
			name, s := name, s
			b.Run(fmt.Sprintf("%s/%v", name, s), func(b *testing.B) {
				r := newRunner(b, []string{name})
				ref := reference(b, r, name)
				hc := r.Options().HostCores
				host := hc[len(hc)-1]
				for i := 0; i < b.N; i++ {
					run, err := r.RunOne(name, s, host)
					if err != nil {
						b.Fatal(err)
					}
					e := stats.RelErr(float64(run.Result.ROICycles()), float64(ref.Result.ROICycles()))
					b.ReportMetric(100*e, "err_%")
					if s.Conservative() && e != 0 {
						b.Fatalf("conservative scheme %v diverged from the reference", s)
					}
				}
			})
		}
	}
}

// BenchmarkConservativeExactness is the quantitative companion of the
// paper's accuracy argument (§3.2): conservative schemes with windows at or
// below the 10-cycle critical latency must match cycle-by-cycle simulation
// exactly. It reports the (always zero) error so regressions are loud.
func BenchmarkConservativeExactness(b *testing.B) {
	schemes := []core.Scheme{core.SchemeCC, core.SchemeQ10, core.SchemeL10, core.SchemeS9x}
	const name = "fft"
	for _, s := range schemes {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			r := newRunner(b, []string{name})
			ref := reference(b, r, name)
			for i := 0; i < b.N; i++ {
				run, err := r.RunOne(name, s, 1)
				if err != nil {
					b.Fatal(err)
				}
				if run.Result.ROICycles() != ref.Result.ROICycles() {
					b.Fatalf("%v: %d cycles != reference %d", s, run.Result.ROICycles(), ref.Result.ROICycles())
				}
				b.ReportMetric(0, "err_%")
				b.ReportMetric(float64(run.Result.ROICycles()), "cycles")
			}
		})
	}
}

// BenchmarkAdaptiveScheme measures the adaptive-slack extension (DESIGN.md
// §7, after Falcon et al.): error and speed should land between bounded
// slack at the critical latency and unbounded slack.
func BenchmarkAdaptiveScheme(b *testing.B) {
	const name = "ocean"
	r, err := harness.NewRunner(harness.Options{
		Workloads:   []string{name},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ref, err := r.SerialReference(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		run, err := r.RunOne(name, core.SchemeA1000, 1)
		if err != nil {
			b.Fatal(err)
		}
		e := stats.RelErr(float64(run.Result.ROICycles()), float64(ref.Result.ROICycles()))
		b.ReportMetric(100*e, "err_%")
	}
}

// BenchmarkManagerSharding measures the §2.2 manager-split extension: the
// same conservative simulation with 1, 2, and 4 memory-hierarchy shards
// (simulated outcomes are bit-identical; only host-side concurrency
// changes, which a one-CPU host cannot exploit).
func BenchmarkManagerSharding(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			w, err := workloads.Get("ocean")
			if err != nil {
				b.Fatal(err)
			}
			prog, err := asmAssemble(w.Source(1))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					NumCores:      4,
					ManagerShards: shards,
					MaxCycles:     200_000_000,
				}
				m, err := core.NewMachine(prog, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Init(m.Image(), 1); err != nil {
					b.Fatal(err)
				}
				res, err := m.RunParallel(core.SchemeS9x)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Verify(m.Image(), res.Output, 1); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ROICycles()), "cycles")
			}
		})
	}
}

// BenchmarkSlackWindowAblation sweeps the bounded-slack window across the
// critical latency (the design's tuning knob, paper §6): error should be
// ~0 below 10 cycles and grow beyond it while synchronisation gets
// cheaper.
func BenchmarkSlackWindowAblation(b *testing.B) {
	const name = "ocean"
	for _, window := range []int64{0, 5, 9, 50, 100, 1000, math.MaxInt32} {
		window := window
		s := core.Scheme{Kind: core.Bounded, Window: window}
		label := s.String()
		if window == math.MaxInt32 {
			s, label = core.SchemeSU, "SU"
		}
		b.Run(label, func(b *testing.B) {
			r, err := harness.NewRunner(harness.Options{
				Workloads:   []string{name},
				TargetCores: 4,
				Verify:      true,
			})
			if err != nil {
				b.Fatal(err)
			}
			ref, err := r.SerialReference(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				run, err := r.RunOne(name, s, 1)
				if err != nil {
					b.Fatal(err)
				}
				e := stats.RelErr(float64(run.Result.ROICycles()), float64(ref.Result.ROICycles()))
				b.ReportMetric(100*e, "err_%")
			}
		})
	}
}
