// Command ssasm assembles and disassembles SSA (SlackSim Architecture)
// programs — the custom ISA the simulator executes, standing in for
// SimpleScalar's PISA.
//
// Examples:
//
//	ssasm prog.s              # assemble; report sizes and symbols
//	ssasm -d prog.s           # assemble then disassemble the text section
//	ssasm -workload fft       # dump a built-in workload's generated source
package main

import (
	"flag"
	"fmt"
	"os"

	"slacksim/internal/asm"
	"slacksim/internal/isa"
	"slacksim/internal/workloads"
)

func main() {
	var (
		disasm   = flag.Bool("d", false, "disassemble the text section")
		symbols  = flag.Bool("s", false, "print the symbol table")
		workload = flag.String("workload", "", "dump the generated source of a built-in workload instead of reading a file")
		scale    = flag.Int("scale", 1, "workload scale when using -workload")
	)
	flag.Parse()

	var src string
	switch {
	case *workload != "":
		w, err := workloads.Get(*workload)
		if err != nil {
			fatal(err)
		}
		src = w.Source(*scale)
		if !*disasm && !*symbols {
			fmt.Print(src)
			return
		}
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: ssasm [-d] [-s] file.s | ssasm -workload <name>")
		os.Exit(2)
	}

	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("text: %d instructions (%d bytes at %#x)\n", len(prog.Text), len(prog.Text)*isa.InstBytes, prog.TextBase)
	fmt.Printf("data: %d bytes at %#x\n", len(prog.Data), prog.DataBase)
	fmt.Printf("entry: %#x\n", prog.Entry)

	if *symbols {
		for name, addr := range prog.Symbols {
			fmt.Printf("%#08x  %s\n", addr, name)
		}
	}
	if *disasm {
		for i, in := range prog.Text {
			pc := prog.TextBase + uint64(i)*isa.InstBytes
			fmt.Printf("%#08x:  %s\n", pc, in.Disassemble(pc))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssasm:", err)
	os.Exit(1)
}
