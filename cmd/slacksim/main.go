// Command slacksim runs a single simulation: one workload (built-in or an
// assembly file) on the target CMP under a chosen slack scheme.
//
// Examples:
//
//	slacksim -workload fft -scheme S9
//	slacksim -workload lu -scheme Q10 -cores 8 -host 2 -v
//	slacksim -prog examples/quickstart/hello.s -scheme CC
//	slacksim -workload water -scheme SU -model inorder
//	slacksim -workload fft -scheme S9 -trace out.json -metrics -timeline
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
	"slacksim/internal/introspect"
	"slacksim/internal/metrics"
	"slacksim/internal/trace"
	"slacksim/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "slacksim:", err)
		os.Exit(1)
	}
}

// run is the whole CLI, factored out of main so tests can drive it.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("slacksim", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		workload  = fs.String("workload", "", "built-in workload to run (see -list)")
		progFile  = fs.String("prog", "", "assembly source file to run instead of a built-in workload")
		schemeStr = fs.String("scheme", "S9", "slack scheme: CC, Q<n>, L<n>, S<n>, S<n>*, SU, or serial")
		driverStr = fs.String("driver", "auto", "execution driver: serial, parallel, sharded, fused, or auto (fused when -host 1, else parallel)")
		cores     = fs.Int("cores", 8, "number of target cores")
		host      = fs.Int("host", runtime.NumCPU(), "host cores (GOMAXPROCS) for the parallel engine")
		scale     = fs.Int("scale", 1, "workload input scale factor")
		model     = fs.String("model", "ooo", "core timing model: ooo or inorder")
		verbose   = fs.Bool("v", false, "print per-core statistics")
		verify    = fs.Bool("verify", true, "verify workload results against the Go reference")
		maxCycles = fs.Int64("max-cycles", 0, "abort after this many simulated cycles (0 = default)")
		shards    = fs.Int("shards", 1, "manager shards for the memory hierarchy (paper §2.2)")
		list      = fs.Bool("list", false, "list built-in workloads and exit")
		traceOut  = fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in Perfetto)")
		useMet    = fs.Bool("metrics", false, "collect engine/CPU/cache metrics and print the registry + sync-overhead breakdown")
		timeline  = fs.Bool("timeline", false, "print an ASCII per-core slack timeline (implies tracing)")
		forensics = fs.String("forensics", "text", "forensics rendering when a run fails or aborts: text, json, or off")
		stallTO   = fs.Duration("stall-timeout", 0, "abort a parallel run whose simulated time stalls for this host duration (0 = 60s default)")
		audit     = fs.Bool("audit", false, "enable the sampled runtime invariant auditor (Global <= Local <= MaxLocal)")
		listen    = fs.String("listen", "", "serve live introspection (/metrics, /slack, /stallz, /debug/pprof) on this address during the run (implies metrics collection)")
		bundleDir = fs.String("bundle-dir", "", "write a post-mortem crash bundle (trace, metrics, stall report, recovery state, MANIFEST) under this directory when the run fails")

		remoteWorkers = fs.String("remote-workers", "", "comma-separated worker addresses (slackworker -listen) to host the memory shards over TCP")
		remoteSpawn   = fs.Int("remote-spawn", 0, "spawn this many worker child processes (this binary, -worker-stdio) to host the memory shards")
		remoteShards  = fs.Int("remote-shards", 0, "memory-hierarchy shards for the remote backend (default: one per worker)")
		remoteRetry   = fs.Int("remote-retry", 0, "redial attempts per worker failure before its shards migrate in-process (0 = 3, negative = no retries)")
		remoteHB      = fs.Duration("remote-heartbeat", 0, "worker heartbeat interval for failure detection (0 = 1s, negative = disabled)")
		remoteCkpt    = fs.Int("remote-checkpoint", 0, "worker checkpoint cadence in gates, bounding the recovery replay (0 = 64, negative = disabled)")
		workerStdio   = fs.Bool("worker-stdio", false, "run as a remote shard worker over stdin/stdout (internal: used by -remote-spawn)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *workerStdio {
		return runWorkerStdio(errw)
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Fprintf(out, "%-8s %s\n", w.Name, w.Description)
		}
		return nil
	}

	scheme, serial, err := parseScheme(*schemeStr)
	if err != nil {
		return err
	}

	var prog *asm.Program
	var wl *workloads.Workload
	switch {
	case *workload != "":
		wl, err = workloads.Get(*workload)
		if err != nil {
			return err
		}
		prog, err = asm.Assemble(wl.Source(*scale), asm.Options{})
		if err != nil {
			return fmt.Errorf("assembling %s: %w", *workload, err)
		}
	case *progFile != "":
		src, err := os.ReadFile(*progFile)
		if err != nil {
			return err
		}
		prog, err = asm.Assemble(string(src), asm.Options{})
		if err != nil {
			return fmt.Errorf("assembling %s: %w", *progFile, err)
		}
	default:
		return fmt.Errorf("need -workload or -prog (see -list)")
	}

	switch *forensics {
	case "text", "json", "off":
	default:
		return fmt.Errorf("unknown -forensics mode %q (want text, json, or off)", *forensics)
	}

	var workerAddrs []string
	if *remoteWorkers != "" {
		workerAddrs = strings.Split(*remoteWorkers, ",")
	}
	nWorkers := len(workerAddrs) + *remoteSpawn
	switch {
	case len(workerAddrs) > 0 && *remoteSpawn > 0:
		return fmt.Errorf("-remote-workers and -remote-spawn are mutually exclusive")
	case nWorkers > 0 && serial:
		return fmt.Errorf("the serial engine has no remote backend")
	case nWorkers == 0 && *remoteShards > 0:
		return fmt.Errorf("-remote-shards needs -remote-workers or -remote-spawn")
	case nWorkers > 0 && *remoteShards == 0:
		*remoteShards = nWorkers
	}

	driver, err := resolveDriver(*driverStr, serial, nWorkers, *shards, *host)
	if err != nil {
		return err
	}
	if driver == "sharded" && *shards < 2 {
		*shards = 2
	}

	cfg := core.Config{
		NumCores:      *cores,
		CPU:           cpu.DefaultConfig(),
		Cache:         cache.DefaultConfig(*cores),
		MaxCycles:     *maxCycles,
		ManagerShards: *shards,
		RemoteShards:  *remoteShards,
		StallTimeout:  *stallTO,
		Audit:         *audit,
	}
	if *model == "inorder" {
		cfg.Model = core.ModelInOrder
	}
	m, err := core.NewMachine(prog, cfg)
	if err != nil {
		return err
	}
	if wl != nil {
		if err := wl.Init(m.Image(), *scale); err != nil {
			return err
		}
	}

	var tc *trace.Collector
	var traceFile *os.File
	if *traceOut != "" || *timeline {
		tc = trace.New()
		m.EnableTrace(tc)
		if *traceOut != "" {
			// Open before the run so a bad path fails fast, not after
			// minutes of simulation.
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer traceFile.Close()
		}
	}
	var reg *metrics.Registry
	if *useMet || *listen != "" {
		// -listen needs the registry too: the live views are built on it.
		reg = metrics.NewRegistry()
		m.EnableMetrics(reg)
	}
	if *bundleDir != "" {
		m.SetBundleDir(*bundleDir)
	}
	if *listen != "" {
		isrv, err := introspect.New(*listen)
		if err != nil {
			return err
		}
		defer isrv.Close()
		if err := m.EnableIntrospection(isrv); err != nil {
			return err
		}
		fmt.Fprintf(errw, "introspection: http://%s\n", isrv.Addr())
	}

	// Graceful shutdown: SIGINT/SIGTERM interrupt the run instead of
	// killing the process, so traces still flush, the introspection
	// server still closes, and spawned workers are still reaped.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()
	go func() {
		if _, ok := <-sigc; ok {
			interrupted.Store(true)
			fmt.Fprintln(errw, "slacksim: interrupt — stopping run, flushing outputs")
			m.Interrupt()
		}
	}()

	start := time.Now()
	var res *core.Result
	switch {
	case driver == "serial":
		res, err = m.RunSerial()
	case nWorkers > 0:
		var fleet *workerFleet
		var terr error
		if len(workerAddrs) > 0 {
			fleet, terr = dialWorkers(workerAddrs)
		} else {
			fleet, terr = spawnWorkers(*remoteSpawn, errw)
		}
		if terr != nil {
			return terr
		}
		opts := &core.RemoteOptions{
			Transports:      fleet.transports,
			Redial:          fleet.redial,
			Kill:            fleet.kill,
			RetryBudget:     *remoteRetry,
			Heartbeat:       *remoteHB,
			CheckpointEvery: *remoteCkpt,
		}
		prev := runtime.GOMAXPROCS(*host)
		res, err = m.RunRemoteShardedOpts(scheme, opts)
		runtime.GOMAXPROCS(prev)
		fleet.cleanup()
	case driver == "fused":
		prev := runtime.GOMAXPROCS(*host)
		res, err = m.RunFused(scheme)
		runtime.GOMAXPROCS(prev)
	default:
		prev := runtime.GOMAXPROCS(*host)
		res, err = m.RunParallel(scheme)
		runtime.GOMAXPROCS(prev)
	}
	if err != nil {
		// A contained failure (panic, ring overflow, audit violation) or
		// a watchdog stall: print the cause plus the forensic snapshot and
		// exit nonzero.
		fmt.Fprintf(errw, "run FAILED: %v\n", err)
		writeForensics(errw, *forensics, reportOf(err))
		if p := m.BundlePath(); p != "" {
			fmt.Fprintf(errw, "crash bundle: %s\n", p)
		}
		return fmt.Errorf("simulation failed (%s scheme)", *schemeStr)
	}
	res.Wall = time.Since(start)

	if res.Output != "" {
		fmt.Fprintf(out, "output: %q\n", res.Output)
	}
	status := "ok"
	switch {
	case res.Aborted && interrupted.Load():
		status = "INTERRUPTED"
	case res.Aborted:
		status = "ABORTED (cycle limit)"
	}
	fmt.Fprintf(out, "scheme %v, driver %s: %s, exit code %d\n", *schemeStr, driver, status, res.ExitCode)
	fmt.Fprintf(out, "simulated: %d cycles total, %d ROI cycles, %d ROI instructions\n",
		res.EndTime, res.ROICycles(), res.Committed)
	fmt.Fprintf(out, "host: %v wall, %.1f KIPS, %d time warps\n", res.Wall.Round(time.Millisecond), res.KIPS(), res.TimeWarps)
	if rec := res.Recovery; rec != nil {
		// One greppable line per remote run — CI's chaos smoke asserts on
		// it, and an all-zero line is itself the "nothing went wrong" signal.
		fmt.Fprintf(out, "remote recovery: reconnects=%d replayed_batches=%d checkpoints=%d abandoned_workers=%d migrated_shards=%d\n",
			rec.Reconnects, rec.ReplayedBatches, rec.Checkpoints, rec.AbandonedWorkers, rec.MigratedShards)
		// A run that finished but abandoned workers still wrote a bundle
		// (the fleet shrank — someone will want the incident trail).
		if p := m.BundlePath(); p != "" {
			fmt.Fprintf(out, "crash bundle: %s\n", p)
		}
	}

	if wl != nil && *verify && !res.Aborted {
		if err := wl.Verify(m.Image(), res.Output, *scale); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Fprintln(out, "verification: PASS")
	}

	if *verbose {
		for i, st := range res.CoreStats {
			fmt.Fprintf(out, "core %d: %d instrs, %d cycles (%d skipped), ipc %.2f, %d loads, %d stores, %d branches (%.1f%% mispredict), L1D %d/%d hits, %d syscalls\n",
				i, st.Committed, st.Cycles, st.Skipped, ipc(st), st.Loads, st.Stores,
				st.Branches, pct(st.Mispred, st.Branches), st.L1D.Hits, st.L1D.Hits+st.L1D.Misses, st.Syscalls)
		}
		l2 := res.L2Stats
		fmt.Fprintf(out, "L2: %d accesses (%.1f%% hits), %d DRAM reads, %d invalidations, %d downgrades\n",
			l2.Accesses, pct(l2.Hits, l2.Accesses), l2.DRAMReads, l2.InvsSent, l2.Downgrades)
	}

	if *useMet {
		var busy, wait time.Duration
		for i := range res.CoreBusy {
			busy += res.CoreBusy[i]
			wait += res.CoreWait[i]
		}
		// The serial driver has no core goroutines, so no breakdown.
		if busy > 0 {
			fmt.Fprintf(out, "sync overhead: simulate %.1f%%, wait %.1f%%, manager %v, %d events processed\n",
				100*float64(busy-wait)/float64(busy), 100*float64(wait)/float64(busy),
				res.ManagerBusy.Round(time.Microsecond), res.EventsProcessed)
		}
		printStragglers(out, res.Stragglers)
		fmt.Fprintf(out, "host memory: %d allocs (%.2f/kinstr), %d GCs, %v pause\n",
			res.HostAllocs, res.AllocsPerKInstr(), res.HostGCs,
			res.HostGCPauses.Round(time.Microsecond))
		if rw := res.Wire; rw != nil {
			fmt.Fprintf(out, "wire: parent sent %d B in %d batches (%.0f B/batch), recvd %d B; workers encode %v, decode %v\n",
				rw.Parent.BytesSent, rw.Parent.BatchesSent, rw.Parent.BytesPerBatch(),
				rw.Parent.BytesRecv,
				time.Duration(rw.Workers.EncodeNS).Round(time.Microsecond),
				time.Duration(rw.Workers.DecodeNS).Round(time.Microsecond))
		}
		fmt.Fprintln(out, "metrics:")
		if err := reg.Write(out); err != nil {
			return err
		}
	}
	if *timeline {
		if err := tc.SlackTimeline(out, 72); err != nil {
			return err
		}
	}
	if traceFile != nil {
		// WriteTraceChrome merges the whole fleet for a remote run (worker
		// tracks rebased onto the parent clock, wire flow events,
		// supervision incidents); local drivers get the plain export.
		if err := m.WriteTraceChrome(traceFile); err != nil {
			return fmt.Errorf("writing trace %s: %w", *traceOut, err)
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %s (load in Perfetto / chrome://tracing)\n", *traceOut)
		if d := tc.TotalDropped(); d > 0 {
			fmt.Fprintf(errw, "warning: trace dropped %d event(s) — per-core rings wrapped, oldest events lost (see trace.dropped.* metrics)\n", d)
		}
	}
	if res.Aborted {
		if interrupted.Load() {
			// A signal-driven stop is deliberate: no forensics, but still a
			// nonzero exit so scripts know the run did not complete.
			return fmt.Errorf("interrupted at %d simulated cycles", res.EndTime)
		}
		// A MaxCycles abort is a failed run: surface the snapshot and make
		// the process exit nonzero so scripted sweeps notice.
		writeForensics(errw, *forensics, res.Forensics)
		if p := m.BundlePath(); p != "" {
			fmt.Fprintf(errw, "crash bundle: %s\n", p)
		}
		return fmt.Errorf("aborted at %d simulated cycles (cycle limit)", res.EndTime)
	}
	return nil
}

// printStragglers surfaces the manager's per-core hold attribution: which
// target cores most often held back the global window, and by how much
// (EWMA of held rounds). Only cores that ever held the window are shown.
func printStragglers(out io.Writer, ss []core.Straggler) {
	held := make([]core.Straggler, 0, len(ss))
	for _, s := range ss {
		if s.HeldRounds > 0 {
			held = append(held, s)
		}
	}
	if len(held) == 0 {
		return
	}
	sort.Slice(held, func(i, j int) bool { return held[i].HeldRounds > held[j].HeldRounds })
	if len(held) > 4 {
		held = held[:4]
	}
	fmt.Fprint(out, "stragglers:")
	for _, s := range held {
		fmt.Fprintf(out, " core %d (%d rounds, %.1f%% of run, ewma %.2f)",
			s.Core, s.HeldRounds, 100*s.HeldFrac, s.EWMA)
	}
	fmt.Fprintln(out)
}

// reportOf extracts the forensic snapshot attached to a run error.
func reportOf(err error) *core.StallReport {
	var stall *core.StallError
	if errors.As(err, &stall) {
		return stall.Report
	}
	var sim *core.SimError
	if errors.As(err, &sim) {
		return sim.Report
	}
	return nil
}

// writeForensics renders a snapshot per the -forensics mode.
func writeForensics(w io.Writer, mode string, r *core.StallReport) {
	if r == nil || mode == "off" {
		return
	}
	if mode == "json" {
		b, err := r.JSON()
		if err != nil {
			fmt.Fprintf(w, "forensics: %v\n", err)
			return
		}
		w.Write(b)
		fmt.Fprintln(w)
		return
	}
	fmt.Fprint(w, r.Text())
}

func ipc(st *cpu.Stats) float64 {
	if st.Cycles == 0 {
		return 0
	}
	return float64(st.Committed) / float64(st.Cycles)
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// resolveDriver maps the -driver flag onto an execution engine, honoring
// the legacy "-scheme serial" spelling and the sharded/remote flags. Auto
// picks fused when the host-core budget is 1 (goroutine fabric is pure
// overhead there), sharded when -shards asks for it, remote when workers
// are configured, and parallel otherwise.
func resolveDriver(name string, serialScheme bool, nWorkers, shards, host int) (string, error) {
	switch name {
	case "auto":
		switch {
		case serialScheme:
			return "serial", nil
		case nWorkers > 0:
			return "remote", nil
		case shards > 1:
			return "sharded", nil
		case host == 1:
			return "fused", nil
		default:
			return "parallel", nil
		}
	case "serial":
		if nWorkers > 0 {
			return "", fmt.Errorf("the serial engine has no remote backend")
		}
		return "serial", nil
	case "parallel", "sharded", "fused":
		if serialScheme {
			return "", fmt.Errorf("-scheme serial conflicts with -driver %s", name)
		}
		if nWorkers > 0 {
			return "", fmt.Errorf("-driver %s conflicts with the remote-backend flags", name)
		}
		if name == "fused" && shards > 1 {
			return "", fmt.Errorf("-driver fused is a single-goroutine engine; it cannot host -shards %d", shards)
		}
		return name, nil
	default:
		return "", fmt.Errorf("unknown -driver %q (want serial, parallel, sharded, fused, or auto)", name)
	}
}

// parseScheme parses a scheme name, plus "serial" for the reference engine.
func parseScheme(s string) (core.Scheme, bool, error) {
	if strings.EqualFold(strings.TrimSpace(s), "serial") {
		return core.Scheme{}, true, nil
	}
	scheme, err := core.ParseScheme(s)
	return scheme, false, err
}
