// Command slacksim runs a single simulation: one workload (built-in or an
// assembly file) on the target CMP under a chosen slack scheme.
//
// Examples:
//
//	slacksim -workload fft -scheme S9
//	slacksim -workload lu -scheme Q10 -cores 8 -host 2 -v
//	slacksim -prog examples/quickstart/hello.s -scheme CC
//	slacksim -workload water -scheme SU -model inorder
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
	"slacksim/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "", "built-in workload to run (see -list)")
		progFile  = flag.String("prog", "", "assembly source file to run instead of a built-in workload")
		schemeStr = flag.String("scheme", "S9", "slack scheme: CC, Q<n>, L<n>, S<n>, S<n>*, SU, or serial")
		cores     = flag.Int("cores", 8, "number of target cores")
		host      = flag.Int("host", runtime.NumCPU(), "host cores (GOMAXPROCS) for the parallel engine")
		scale     = flag.Int("scale", 1, "workload input scale factor")
		model     = flag.String("model", "ooo", "core timing model: ooo or inorder")
		verbose   = flag.Bool("v", false, "print per-core statistics")
		verify    = flag.Bool("verify", true, "verify workload results against the Go reference")
		maxCycles = flag.Int64("max-cycles", 0, "abort after this many simulated cycles (0 = default)")
		shards    = flag.Int("shards", 1, "manager shards for the memory hierarchy (paper §2.2)")
		list      = flag.Bool("list", false, "list built-in workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-8s %s\n", w.Name, w.Description)
		}
		return
	}

	scheme, serial, err := parseScheme(*schemeStr)
	if err != nil {
		fatal(err)
	}

	var prog *asm.Program
	var wl *workloads.Workload
	switch {
	case *workload != "":
		wl, err = workloads.Get(*workload)
		if err != nil {
			fatal(err)
		}
		prog, err = asm.Assemble(wl.Source(*scale), asm.Options{})
		if err != nil {
			fatal(fmt.Errorf("assembling %s: %w", *workload, err))
		}
	case *progFile != "":
		src, err := os.ReadFile(*progFile)
		if err != nil {
			fatal(err)
		}
		prog, err = asm.Assemble(string(src), asm.Options{})
		if err != nil {
			fatal(fmt.Errorf("assembling %s: %w", *progFile, err))
		}
	default:
		fatal(fmt.Errorf("need -workload or -prog (see -list)"))
	}

	cfg := core.Config{
		NumCores:      *cores,
		CPU:           cpu.DefaultConfig(),
		Cache:         cache.DefaultConfig(*cores),
		MaxCycles:     *maxCycles,
		ManagerShards: *shards,
	}
	if *model == "inorder" {
		cfg.Model = core.ModelInOrder
	}
	m, err := core.NewMachine(prog, cfg)
	if err != nil {
		fatal(err)
	}
	if wl != nil {
		if err := wl.Init(m.Image(), *scale); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	var res *core.Result
	if serial {
		res = m.RunSerial()
	} else {
		prev := runtime.GOMAXPROCS(*host)
		res, err = m.RunParallel(scheme)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			fatal(err)
		}
	}
	res.Wall = time.Since(start)

	if res.Output != "" {
		fmt.Printf("output: %q\n", res.Output)
	}
	status := "ok"
	if res.Aborted {
		status = "ABORTED (cycle limit or stall)"
	}
	fmt.Printf("scheme %v: %s, exit code %d\n", *schemeStr, status, res.ExitCode)
	fmt.Printf("simulated: %d cycles total, %d ROI cycles, %d ROI instructions\n",
		res.EndTime, res.ROICycles(), res.Committed)
	fmt.Printf("host: %v wall, %.1f KIPS, %d time warps\n", res.Wall.Round(time.Millisecond), res.KIPS(), res.TimeWarps)

	if wl != nil && *verify {
		if err := wl.Verify(m.Image(), res.Output, *scale); err != nil {
			fatal(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Println("verification: PASS")
	}

	if *verbose {
		for i, st := range res.CoreStats {
			fmt.Printf("core %d: %d instrs, %d cycles (%d skipped), ipc %.2f, %d loads, %d stores, %d branches (%.1f%% mispredict), L1D %d/%d hits, %d syscalls\n",
				i, st.Committed, st.Cycles, st.Skipped, ipc(st), st.Loads, st.Stores,
				st.Branches, pct(st.Mispred, st.Branches), st.L1D.Hits, st.L1D.Hits+st.L1D.Misses, st.Syscalls)
		}
		l2 := res.L2Stats
		fmt.Printf("L2: %d accesses (%.1f%% hits), %d DRAM reads, %d invalidations, %d downgrades\n",
			l2.Accesses, pct(l2.Hits, l2.Accesses), l2.DRAMReads, l2.InvsSent, l2.Downgrades)
	}
}

func ipc(st *cpu.Stats) float64 {
	if st.Cycles == 0 {
		return 0
	}
	return float64(st.Committed) / float64(st.Cycles)
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// parseScheme parses a scheme name, plus "serial" for the reference engine.
func parseScheme(s string) (core.Scheme, bool, error) {
	if strings.EqualFold(strings.TrimSpace(s), "serial") {
		return core.Scheme{}, true, nil
	}
	scheme, err := core.ParseScheme(s)
	return scheme, false, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slacksim:", err)
	os.Exit(1)
}
