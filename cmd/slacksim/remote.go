package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"slacksim/internal/core"
	"slacksim/internal/remote"
)

// This file is slacksim's half of the distributed backend: turning
// -remote-workers / -remote-spawn into the []remote.Transport that
// core.RunRemoteSharded drives, and serving the child side of
// -remote-spawn via -worker-stdio.

// runWorkerStdio is the child side of -remote-spawn: serve one worker
// session over stdin/stdout, then exit. SIGINT/SIGTERM close the
// transport, which unblocks the session read and ends the process
// cleanly (exit 0) instead of leaving an orphan; the parent sees the
// closed stream as a contained worker-death SimError, not a hang.
func runWorkerStdio(errw io.Writer) error {
	// os.Stdin/os.Stdout are opened blocking, which keeps them off the
	// runtime poller and makes SetDeadline fail with ErrNoDeadline.
	// Pipes re-registered nonblocking are fully pollable, so deadlines —
	// and with them the orphan-detection guarantees — work.
	for _, fd := range []int{0, 1} {
		if err := syscall.SetNonblock(fd, true); err != nil {
			return fmt.Errorf("worker stdio fd %d: %w", fd, err)
		}
	}
	t := stdioTransport{r: os.NewFile(0, "stdin"), w: os.NewFile(1, "stdout")}
	var stopped atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()
	go func() {
		if _, ok := <-sigc; ok {
			stopped.Store(true)
			fmt.Fprintln(errw, "slacksim worker: signal — closing session")
			t.Close()
		}
	}()
	err := core.ServeRemoteShards(t)
	if err != nil && stopped.Load() {
		return nil
	}
	return err
}

// stdioTransport adapts a (read, write) file pair — a spawned worker's
// stdin/stdout pipes — to the remote.Transport contract. Linux pipes are
// pollable, so *os.File deadlines work and every liveness guarantee the
// TCP path gives (bounded reads, contained timeouts) holds across the
// process boundary too.
type stdioTransport struct {
	r, w *os.File
}

func (t stdioTransport) Read(p []byte) (int, error)         { return t.r.Read(p) }
func (t stdioTransport) Write(p []byte) (int, error)        { return t.w.Write(p) }
func (t stdioTransport) SetReadDeadline(d time.Time) error  { return t.r.SetReadDeadline(d) }
func (t stdioTransport) SetWriteDeadline(d time.Time) error { return t.w.SetWriteDeadline(d) }

func (t stdioTransport) Close() error {
	err := t.w.Close()
	if e := t.r.Close(); err == nil {
		err = e
	}
	return err
}

// workerFleet is the CLI's view of its worker endpoints: the initial
// transports plus the recovery hooks core.RemoteOptions wants — redial
// (resume a session after a connection failure) and, where the fleet
// owns the processes, kill (the WorkerKill chaos hook).
type workerFleet struct {
	transports []remote.Transport
	redial     func(worker int) (remote.Transport, error)
	kill       func(worker int) error
	cleanup    func()
}

// dialWorkers connects to already-running workers (slackworker -listen
// addresses). Redial re-dials the same address — a restarted slackworker
// under the same -listen address picks the session back up. The cleanup
// closes whatever was opened; it is safe after the run has already
// force-closed the connections.
func dialWorkers(addrs []string) (*workerFleet, error) {
	var mu sync.Mutex
	var ts []remote.Transport
	f := &workerFleet{}
	f.cleanup = func() {
		mu.Lock()
		defer mu.Unlock()
		for _, t := range ts {
			t.Close()
		}
	}
	f.redial = func(worker int) (remote.Transport, error) {
		c, err := net.DialTimeout("tcp", addrs[worker], 10*time.Second)
		if err != nil {
			return nil, fmt.Errorf("re-dialing worker %s: %w", addrs[worker], err)
		}
		mu.Lock()
		ts = append(ts, c.(remote.Transport))
		mu.Unlock()
		return c.(remote.Transport), nil
	}
	for _, a := range addrs {
		c, err := net.DialTimeout("tcp", a, 10*time.Second)
		if err != nil {
			f.cleanup()
			return nil, fmt.Errorf("dialing worker %s: %w", a, err)
		}
		mu.Lock()
		ts = append(ts, c.(remote.Transport))
		mu.Unlock()
		f.transports = append(f.transports, c.(remote.Transport))
	}
	return f, nil
}

// spawnWorkers launches n copies of this binary in -worker-stdio mode,
// each wired up over two OS pipes (parent→stdin, stdout→parent). Redial
// respawns a fresh child for the failed worker slot; kill SIGKILLs the
// current child (the chaos hook). The cleanup closes every pipe ever
// opened and reaps every child ever spawned. Workers exit 0 when the
// parent's FFinish lands, so a clean run leaves no stray processes.
func spawnWorkers(n int, errw io.Writer) (*workerFleet, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary for -remote-spawn: %w", err)
	}
	var mu sync.Mutex
	var ts []remote.Transport
	var cmds []*exec.Cmd
	cur := make(map[int]*exec.Cmd)
	f := &workerFleet{}
	f.cleanup = func() {
		mu.Lock()
		allT := append([]remote.Transport(nil), ts...)
		allC := append([]*exec.Cmd(nil), cmds...)
		mu.Unlock()
		for _, t := range allT {
			t.Close()
		}
		for _, c := range allC {
			c.Wait()
		}
	}
	spawn := func(worker int) (remote.Transport, error) {
		childIn, parentOut, err := os.Pipe()
		if err != nil {
			return nil, err
		}
		parentIn, childOut, err := os.Pipe()
		if err != nil {
			childIn.Close()
			parentOut.Close()
			return nil, err
		}
		cmd := exec.Command(exe, "-worker-stdio")
		cmd.Stdin = childIn
		cmd.Stdout = childOut
		cmd.Stderr = errw
		if err := cmd.Start(); err != nil {
			childIn.Close()
			childOut.Close()
			parentIn.Close()
			parentOut.Close()
			return nil, fmt.Errorf("spawning worker %d: %w", worker, err)
		}
		// The child owns its ends now; keeping them open in the parent
		// would defeat EOF detection when the child dies.
		childIn.Close()
		childOut.Close()
		t := stdioTransport{r: parentIn, w: parentOut}
		mu.Lock()
		ts = append(ts, t)
		cmds = append(cmds, cmd)
		cur[worker] = cmd
		mu.Unlock()
		return t, nil
	}
	f.redial = spawn
	f.kill = func(worker int) error {
		mu.Lock()
		cmd := cur[worker]
		mu.Unlock()
		if cmd == nil || cmd.Process == nil {
			return fmt.Errorf("no live child for worker %d", worker)
		}
		return cmd.Process.Kill()
	}
	for i := 0; i < n; i++ {
		t, err := spawn(i)
		if err != nil {
			f.cleanup()
			return nil, err
		}
		f.transports = append(f.transports, t)
	}
	return f, nil
}
