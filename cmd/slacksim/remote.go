package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"slacksim/internal/core"
	"slacksim/internal/remote"
)

// This file is slacksim's half of the distributed backend: turning
// -remote-workers / -remote-spawn into the []remote.Transport that
// core.RunRemoteSharded drives, and serving the child side of
// -remote-spawn via -worker-stdio.

// runWorkerStdio is the child side of -remote-spawn: serve one worker
// session over stdin/stdout, then exit. SIGINT/SIGTERM close the
// transport, which unblocks the session read and ends the process
// cleanly (exit 0) instead of leaving an orphan; the parent sees the
// closed stream as a contained worker-death SimError, not a hang.
func runWorkerStdio(errw io.Writer) error {
	// os.Stdin/os.Stdout are opened blocking, which keeps them off the
	// runtime poller and makes SetDeadline fail with ErrNoDeadline.
	// Pipes re-registered nonblocking are fully pollable, so deadlines —
	// and with them the orphan-detection guarantees — work.
	for _, fd := range []int{0, 1} {
		if err := syscall.SetNonblock(fd, true); err != nil {
			return fmt.Errorf("worker stdio fd %d: %w", fd, err)
		}
	}
	t := stdioTransport{r: os.NewFile(0, "stdin"), w: os.NewFile(1, "stdout")}
	var stopped atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()
	go func() {
		if _, ok := <-sigc; ok {
			stopped.Store(true)
			fmt.Fprintln(errw, "slacksim worker: signal — closing session")
			t.Close()
		}
	}()
	err := core.ServeRemoteShards(t)
	if err != nil && stopped.Load() {
		return nil
	}
	return err
}

// stdioTransport adapts a (read, write) file pair — a spawned worker's
// stdin/stdout pipes — to the remote.Transport contract. Linux pipes are
// pollable, so *os.File deadlines work and every liveness guarantee the
// TCP path gives (bounded reads, contained timeouts) holds across the
// process boundary too.
type stdioTransport struct {
	r, w *os.File
}

func (t stdioTransport) Read(p []byte) (int, error)         { return t.r.Read(p) }
func (t stdioTransport) Write(p []byte) (int, error)        { return t.w.Write(p) }
func (t stdioTransport) SetReadDeadline(d time.Time) error  { return t.r.SetReadDeadline(d) }
func (t stdioTransport) SetWriteDeadline(d time.Time) error { return t.w.SetWriteDeadline(d) }

func (t stdioTransport) Close() error {
	err := t.w.Close()
	if e := t.r.Close(); err == nil {
		err = e
	}
	return err
}

// dialWorkers connects to already-running workers (slackworker -listen
// addresses). The returned cleanup closes whatever was opened; it is safe
// after RunRemoteSharded has already force-closed the connections.
func dialWorkers(addrs []string) ([]remote.Transport, func(), error) {
	var ts []remote.Transport
	cleanup := func() {
		for _, t := range ts {
			t.Close()
		}
	}
	for _, a := range addrs {
		c, err := net.DialTimeout("tcp", a, 10*time.Second)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("dialing worker %s: %w", a, err)
		}
		ts = append(ts, c.(remote.Transport))
	}
	return ts, cleanup, nil
}

// spawnWorkers launches n copies of this binary in -worker-stdio mode,
// each wired up over two OS pipes (parent→stdin, stdout→parent), and
// returns their transports plus a reaper that closes the pipes and waits
// for every child. Workers exit 0 when the parent's FFinish lands, so a
// clean run leaves no stray processes.
func spawnWorkers(n int, errw io.Writer) ([]remote.Transport, func(), error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("locating own binary for -remote-spawn: %w", err)
	}
	var ts []remote.Transport
	var cmds []*exec.Cmd
	cleanup := func() {
		for _, t := range ts {
			t.Close()
		}
		for _, c := range cmds {
			c.Wait()
		}
	}
	for i := 0; i < n; i++ {
		childIn, parentOut, err := os.Pipe()
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		parentIn, childOut, err := os.Pipe()
		if err != nil {
			childIn.Close()
			parentOut.Close()
			cleanup()
			return nil, nil, err
		}
		cmd := exec.Command(exe, "-worker-stdio")
		cmd.Stdin = childIn
		cmd.Stdout = childOut
		cmd.Stderr = errw
		if err := cmd.Start(); err != nil {
			childIn.Close()
			childOut.Close()
			parentIn.Close()
			parentOut.Close()
			cleanup()
			return nil, nil, fmt.Errorf("spawning worker %d: %w", i, err)
		}
		// The child owns its ends now; keeping them open in the parent
		// would defeat EOF detection when the child dies.
		childIn.Close()
		childOut.Close()
		ts = append(ts, stdioTransport{r: parentIn, w: parentOut})
		cmds = append(cmds, cmd)
	}
	return ts, cleanup, nil
}
