package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTraceMetricsSmoke drives the full CLI on a tiny workload with
// the observability flags on and checks the trace file is a valid Chrome
// trace-event JSON with the promised tracks.
func TestRunTraceMetricsSmoke(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.json")
	var out, errw bytes.Buffer
	args := []string{
		"-workload", "fft", "-scheme", "S9", "-cores", "2", "-host", "2",
		"-trace", tracePath, "-metrics", "-timeline",
	}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstdout:\n%s\nstderr:\n%s", err, out.String(), errw.String())
	}

	for _, want := range []string{"verification: PASS", "sync overhead:", "metrics:", "slack timeline", "trace: " + tracePath} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(out.String(), "engine.events.processed") {
		t.Errorf("metrics dump missing engine counters:\n%s", out.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(raw, &evs); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("trace file holds no events")
	}
	names := make(map[string]bool)
	phases := make(map[string]bool)
	for _, ev := range evs {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
		if ph, ok := ev["ph"].(string); ok {
			phases[ph] = true
		}
	}
	for _, want := range []string{"slack core 0", "global manager"} {
		if !names[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
	if !phases["C"] || !phases["X"] || !phases["M"] {
		t.Errorf("trace missing phases, got %v", phases)
	}
}

// TestRunSerialScheme keeps the serial reference path working through
// the same entry point.
func TestRunSerialScheme(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-workload", "fft", "-scheme", "serial", "-cores", "2"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "verification: PASS") {
		t.Errorf("stdout:\n%s", out.String())
	}
}

// TestRunFusedDriver drives the fused single-goroutine engine through the
// CLI and checks the driver is reported in the output.
func TestRunFusedDriver(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-workload", "fft", "-scheme", "CC", "-cores", "2", "-host", "1", "-driver", "fused"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errw.String())
	}
	for _, want := range []string{"driver fused", "verification: PASS"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunDriverAutoPicksFused checks -host 1 resolves to the fused engine
// without an explicit -driver.
func TestRunDriverAutoPicksFused(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-workload", "fft", "-scheme", "S9", "-cores", "2", "-host", "1"}, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(out.String(), "driver fused") {
		t.Errorf("auto at -host 1 did not pick fused:\n%s", out.String())
	}
}

// TestRunDriverConflicts pins the flag-validation matrix.
func TestRunDriverConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "fft", "-driver", "warp"},
		{"-workload", "fft", "-scheme", "serial", "-driver", "fused"},
		{"-workload", "fft", "-driver", "fused", "-shards", "2"},
	} {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("%v: expected an error", args)
		}
	}
}

// TestRunBadScheme reports parse errors instead of exiting.
func TestRunBadScheme(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-workload", "fft", "-scheme", "bogus"}, &out, &errw); err == nil {
		t.Fatal("expected an error for a bogus scheme")
	}
}

// TestRunWatchdogFailureForensics drives a deadlocking program through the
// CLI: the run must fail (nonzero exit), print the failure cause, and dump
// a forensic report naming the held lock.
func TestRunWatchdogFailureForensics(t *testing.T) {
	progPath := filepath.Join(t.TempDir(), "deadlock.s")
	src := "main:\n li a0, 8192\n syscall 5\n li a0, 8192\n syscall 5\n li a0, 0\n syscall 0\n"
	if err := os.WriteFile(progPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	err := run([]string{"-prog", progPath, "-cores", "1", "-scheme", "S9", "-stall-timeout", "2s"}, &out, &errw)
	if err == nil {
		t.Fatalf("deadlocked run succeeded\nstdout:\n%s", out.String())
	}
	for _, want := range []string{"run FAILED", "watchdog", "owner=c0", "core 0:"} {
		if !strings.Contains(errw.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errw.String())
		}
	}
}

// TestRunAbortForensicsJSON checks the -forensics json rendering on a
// cycle-limit abort: stderr must carry a machine-readable snapshot.
func TestRunAbortForensicsJSON(t *testing.T) {
	progPath := filepath.Join(t.TempDir(), "spin.s")
	if err := os.WriteFile(progPath, []byte("main:\n j main\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	err := run([]string{"-prog", progPath, "-cores", "1", "-scheme", "SU", "-max-cycles", "20000", "-forensics", "json"}, &out, &errw)
	if err == nil {
		t.Fatal("aborted run reported success")
	}
	if !strings.Contains(out.String(), "ABORTED") {
		t.Errorf("stdout missing abort status:\n%s", out.String())
	}
	var report map[string]any
	if jerr := json.Unmarshal(errw.Bytes(), &report); jerr != nil {
		t.Fatalf("stderr is not a JSON forensic report: %v\n%s", jerr, errw.String())
	}
	cores, ok := report["cores"].([]any)
	if !ok || len(cores) != 1 {
		t.Fatalf("report cores = %v", report["cores"])
	}
}

// TestRunAuditFlagClean keeps the -audit flag cheap and quiet on a healthy
// run.
func TestRunAuditFlagClean(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-workload", "fft", "-scheme", "S9", "-cores", "2", "-host", "2", "-audit"}, &out, &errw); err != nil {
		t.Fatalf("audited run failed: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(out.String(), "verification: PASS") {
		t.Errorf("stdout:\n%s", out.String())
	}
}
