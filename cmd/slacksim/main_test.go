package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTraceMetricsSmoke drives the full CLI on a tiny workload with
// the observability flags on and checks the trace file is a valid Chrome
// trace-event JSON with the promised tracks.
func TestRunTraceMetricsSmoke(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.json")
	var out, errw bytes.Buffer
	args := []string{
		"-workload", "fft", "-scheme", "S9", "-cores", "2", "-host", "2",
		"-trace", tracePath, "-metrics", "-timeline",
	}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstdout:\n%s\nstderr:\n%s", err, out.String(), errw.String())
	}

	for _, want := range []string{"verification: PASS", "sync overhead:", "metrics:", "slack timeline", "trace: " + tracePath} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(out.String(), "engine.events.processed") {
		t.Errorf("metrics dump missing engine counters:\n%s", out.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(raw, &evs); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("trace file holds no events")
	}
	names := make(map[string]bool)
	phases := make(map[string]bool)
	for _, ev := range evs {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
		if ph, ok := ev["ph"].(string); ok {
			phases[ph] = true
		}
	}
	for _, want := range []string{"slack core 0", "global manager"} {
		if !names[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
	if !phases["C"] || !phases["X"] || !phases["M"] {
		t.Errorf("trace missing phases, got %v", phases)
	}
}

// TestRunSerialScheme keeps the serial reference path working through
// the same entry point.
func TestRunSerialScheme(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-workload", "fft", "-scheme", "serial", "-cores", "2"}, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "verification: PASS") {
		t.Errorf("stdout:\n%s", out.String())
	}
}

// TestRunBadScheme reports parse errors instead of exiting.
func TestRunBadScheme(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-workload", "fft", "-scheme", "bogus"}, &out, &errw); err == nil {
		t.Fatal("expected an error for a bogus scheme")
	}
}
