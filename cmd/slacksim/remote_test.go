package main

import (
	"bytes"
	"net"
	"regexp"
	"strings"
	"testing"

	"slacksim/internal/core"
)

// startWorkerListener serves core.ServeRemoteShards on every accepted
// connection until the test ends — an in-process stand-in for a
// slackworker process, since the CLI's -remote-spawn path cannot be
// exercised from a test binary (os.Executable is the test runner).
func startWorkerListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go core.ServeRemoteShards(c.(*net.TCPConn))
		}
	}()
	return ln.Addr().String()
}

var simulatedLine = regexp.MustCompile(`simulated: \d+ cycles total`)

// TestRunRemoteWorkers drives the full CLI against two TCP workers and
// checks the simulated end time matches the in-process sharded engine.
// (Committed counts a handful of host-timing-dependent post-exit commits,
// so only the cycle count is compared — same standard as the core tests.)
func TestRunRemoteWorkers(t *testing.T) {
	addr := startWorkerListener(t)
	var remoteOut, errw bytes.Buffer
	args := []string{
		"-workload", "fft", "-scheme", "CC", "-cores", "2", "-host", "2",
		"-metrics", "-remote-workers", addr + "," + addr,
	}
	if err := run(args, &remoteOut, &errw); err != nil {
		t.Fatalf("remote run: %v\nstdout:\n%s\nstderr:\n%s", err, remoteOut.String(), errw.String())
	}
	var localOut bytes.Buffer
	args = []string{"-workload", "fft", "-scheme", "CC", "-cores", "2", "-host", "2", "-shards", "2"}
	if err := run(args, &localOut, &errw); err != nil {
		t.Fatalf("local run: %v", err)
	}

	rSim := simulatedLine.FindString(remoteOut.String())
	lSim := simulatedLine.FindString(localOut.String())
	if rSim == "" || rSim != lSim {
		t.Errorf("remote end time diverges from in-process: %q vs %q", rSim, lSim)
	}
	for _, want := range []string{"verification: PASS", "wire: parent sent"} {
		if !strings.Contains(remoteOut.String(), want) {
			t.Errorf("remote stdout missing %q:\n%s", want, remoteOut.String())
		}
	}
}

func TestRunRemoteFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "fft", "-remote-workers", "x:1", "-remote-spawn", "1"},
		{"-workload", "fft", "-remote-shards", "2"},
		{"-workload", "fft", "-scheme", "serial", "-remote-spawn", "1"},
	} {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("args %v: expected a usage error", args)
		}
	}
}
