// Command slackbench regenerates the paper's evaluation (§4): Table 2
// (benchmarks and baseline KIPS), Figure 8 (simulation speedups per scheme
// and host-core count, per benchmark and harmonic mean), and Table 3
// (relative execution-time errors of the optimistic schemes).
//
// Examples:
//
//	slackbench -all
//	slackbench -figure8 -workloads fft,lu -hostcores 1,2
//	slackbench -table3 -scale 2 -repeat 3
//	slackbench -figure8 -listen 127.0.0.1:8344 -json new.json
//	slackbench -compare old.json new.json -threshold 0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"slacksim/internal/core"
	"slacksim/internal/harness"
	"slacksim/internal/introspect"
)

func main() {
	var (
		table2     = flag.Bool("table2", false, "reproduce Table 2 (benchmarks + baseline KIPS)")
		figure8    = flag.Bool("figure8", false, "reproduce Figure 8 (speedup sweep + harmonic means + derived claims)")
		figure9    = flag.Bool("figure9", false, "reproduce Figures 9-10 (KIPS and scale-up by host-core count)")
		table3     = flag.Bool("table3", false, "reproduce Table 3 (relative execution-time errors)")
		all        = flag.Bool("all", false, "run every experiment")
		wls        = flag.String("workloads", "", "comma-separated workloads (default: the paper's four)")
		schemes    = flag.String("schemes", "", "comma-separated schemes (default: CC,Q10,L10,S9,S9*,S100,SU)")
		hostCores  = flag.String("hostcores", "", "comma-separated host-core counts (default: 1 plus 2,4,8 clipped to this host)")
		scale      = flag.Int("scale", 1, "workload input scale factor")
		cores      = flag.Int("cores", 8, "target CMP cores")
		driver     = flag.String("driver", "auto", "execution driver: serial, parallel, sharded, fused, or auto (fused at 1 host core, parallel otherwise)")
		repeat     = flag.Int("repeat", 1, "repetitions per configuration (best wall time kept)")
		verify     = flag.Bool("verify", true, "verify workload results after every run")
		progress   = flag.Bool("progress", true, "log each run as it completes")
		breakdown  = flag.Bool("breakdown", false, "print the per-scheme sync-overhead breakdown (simulate/wait/manager)")
		metricsOn  = flag.Bool("metrics", false, "attach a metrics registry to every run and log per-run breakdowns")
		traceDir   = flag.String("tracedir", "", "write a Chrome trace-event JSON per run into this directory (named <workload>_<scheme>_<driver>_h<hostcores>.json)")
		bundleDir  = flag.String("bundle-dir", "slackbench-bundles", "write a post-mortem crash bundle under this directory when a sweep run fails (empty disables)")
		jsonPath   = flag.String("json", "", "also write the numbers of every requested experiment to this file as JSON")
		listen     = flag.String("listen", "", "serve live introspection (/metrics, /slack, /stallz, /debug/pprof) on this address during the sweep (implies -metrics)")
		remoteF    = flag.Bool("remote", false, "sweep the distributed remote-shard backend by worker-process count (loopback TCP workers)")
		remoteSh   = flag.Int("remote-shards", 2, "memory shards hosted by remote workers during -remote")
		remoteWkrs = flag.String("remote-workers-list", "1,2", "comma-separated worker-process counts for -remote")

		compare   = flag.String("compare", "", "regression-gate mode: compare this old report JSON against a new one (-compare old.json new.json) and exit 1 on regressions")
		warnOnly  = flag.Bool("warn-only", false, "with -compare, print regressions but always exit 0")
		threshold = flag.Float64("threshold", harness.DefaultCompareThreshold, "with -compare, relative regression threshold (fraction)")
	)
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, flag.Args(), *warnOnly, *threshold))
	}

	if *all {
		*table2, *figure8, *figure9, *table3 = true, true, true, true
	}
	if !*table2 && !*figure8 && !*figure9 && !*table3 && !*breakdown && !*remoteF {
		fmt.Fprintln(os.Stderr, "slackbench: nothing to do; pass -table2, -figure8, -figure9, -table3, -remote, -breakdown, or -all")
		flag.Usage()
		os.Exit(2)
	}

	opts := harness.Options{
		Scale:       *scale,
		TargetCores: *cores,
		Driver:      *driver,
		Repeat:      *repeat,
		Verify:      *verify,
		Metrics:     *metricsOn,
		TraceDir:    *traceDir,
		BundleDir:   *bundleDir,
	}
	var srv *introspect.Server
	if *listen != "" {
		var err error
		srv, err = introspect.New(*listen)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "slackbench: introspection on http://%s\n", srv.Addr())
		opts.Introspect = srv
	}
	if *wls != "" {
		opts.Workloads = splitList(*wls)
	} else if *remoteF && !*table2 && !*figure8 && !*figure9 && !*table3 && !*breakdown {
		// A remote-only sweep defaults to a small workload: conservative
		// gating pays a wire round trip per window advance, so the full
		// paper set would take hours where one small kernel suffices to
		// characterize the backend.
		opts.Workloads = []string{"ocean"}
	}
	if *schemes != "" {
		for _, s := range splitList(*schemes) {
			sc, err := core.ParseScheme(s)
			if err != nil {
				fatal(err)
			}
			opts.Schemes = append(opts.Schemes, sc)
		}
	}
	if *hostCores != "" {
		for _, s := range splitList(*hostCores) {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad host-core count %q", s))
			}
			opts.HostCores = append(opts.HostCores, n)
		}
	}

	r, err := harness.NewRunner(opts)
	if err != nil {
		fatal(err)
	}
	if *progress {
		r.Log = os.Stderr
	}

	// Graceful shutdown: a signal interrupts the in-flight run, stops the
	// sweep, and closes the introspection server instead of killing the
	// process mid-write. fatal() then exits nonzero with ErrInterrupted.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "slackbench: interrupt — stopping sweep")
		r.Interrupt()
		if srv != nil {
			srv.Close()
		}
	}()

	ro := r.Options()
	report := harness.Report{
		TargetCores: ro.TargetCores,
		HostCores:   ro.HostCores,
		Scale:       ro.Scale,
		Host:        harness.CollectHostInfo(),
	}
	// Record which engine produced each host-core column, so -compare can
	// refuse to diff fused numbers against parallel ones.
	report.Host.Drivers = r.DriverNames()
	if *table2 {
		rows, err := r.Table2Data()
		if err != nil {
			fatal(err)
		}
		report.Table2 = rows
		harness.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if *figure8 {
		data, err := r.Figure8(os.Stdout)
		if err != nil {
			fatal(err)
		}
		report.Figure8 = data
		fmt.Println()
	}
	if *figure9 {
		data, err := r.Figure9(os.Stdout)
		if err != nil {
			fatal(err)
		}
		report.Figure9 = data
		fmt.Println()
	}
	if *table3 {
		rows, err := r.Table3Data()
		if err != nil {
			fatal(err)
		}
		report.Table3 = rows
		harness.PrintTable3(os.Stdout, rows, ro.HostCores[len(ro.HostCores)-1])
		fmt.Println()
	}
	if *remoteF {
		var workerCounts []int
		for _, s := range splitList(*remoteWkrs) {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad -remote-workers-list entry %q", s))
			}
			workerCounts = append(workerCounts, n)
		}
		data, err := r.RemoteSweep(os.Stdout, *remoteSh, workerCounts)
		if err != nil {
			fatal(err)
		}
		report.Remote = data
		fmt.Println()
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "slackbench: wrote %s\n", *jsonPath)
	}
	if *breakdown {
		for _, wl := range ro.Workloads {
			for _, hc := range ro.HostCores {
				tbl, err := r.SyncOverheadSweep(wl, hc)
				if err != nil {
					fatal(err)
				}
				fmt.Println(tbl)
			}
		}
	}
}

// runCompare implements -compare. Go's flag package stops parsing at the
// first positional argument, so everything after `-compare old.json` —
// the new report path plus any trailing -warn-only/-threshold — arrives
// in rest and is scanned by hand, merged with the values flag parsing
// already saw.
func runCompare(oldPath string, rest []string, warnOnly bool, threshold float64) int {
	var newPath string
	for i := 0; i < len(rest); i++ {
		arg := rest[i]
		switch {
		case arg == "-warn-only" || arg == "--warn-only":
			warnOnly = true
		case arg == "-threshold" || arg == "--threshold":
			i++
			if i >= len(rest) {
				fatal(fmt.Errorf("-threshold needs a value"))
			}
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				fatal(fmt.Errorf("bad -threshold %q", rest[i]))
			}
			threshold = v
		case strings.HasPrefix(arg, "-threshold=") || strings.HasPrefix(arg, "--threshold="):
			v, err := strconv.ParseFloat(arg[strings.Index(arg, "=")+1:], 64)
			if err != nil {
				fatal(fmt.Errorf("bad %s", arg))
			}
			threshold = v
		case newPath == "":
			newPath = arg
		default:
			fatal(fmt.Errorf("unexpected argument %q after -compare", arg))
		}
	}
	if newPath == "" {
		fatal(fmt.Errorf("-compare needs two reports: slackbench -compare old.json new.json"))
	}
	oldR, err := harness.LoadReport(oldPath)
	if err != nil {
		fatal(err)
	}
	newR, err := harness.LoadReport(newPath)
	if err != nil {
		fatal(err)
	}
	c := harness.CompareReports(oldR, newR, threshold)
	c.Print(os.Stdout)
	if c.Regressions > 0 && !warnOnly {
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slackbench:", err)
	os.Exit(1)
}
