// Command slackworker hosts remote memory-hierarchy shards for a
// slacksim parent running with -remote-workers. It accepts TCP
// connections and serves one simulation session per connection: the
// parent ships the shard assignment and cache geometry in its handshake,
// so one worker binary serves any topology.
//
//	slackworker -listen 127.0.0.1:7701
//	slacksim -workload fft -scheme S9 -remote-workers 127.0.0.1:7701
//
// SIGINT/SIGTERM stop the accept loop, let in-flight sessions drain, and
// exit 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"

	"slacksim/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "slackworker:", err)
		os.Exit(1)
	}
}

func run(args []string, errw io.Writer) error {
	fs := flag.NewFlagSet("slackworker", flag.ContinueOnError)
	fs.SetOutput(errw)
	listen := fs.String("listen", "127.0.0.1:0", "address to accept slacksim parent connections on")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "slackworker: listening on %s\n", ln.Addr())

	var stopping atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()
	go func() {
		if _, ok := <-sigc; ok {
			stopping.Store(true)
			fmt.Fprintln(errw, "slackworker: signal — draining sessions")
			ln.Close()
		}
	}()

	err = serve(ln, errw)
	if stopping.Load() {
		return nil
	}
	return err
}

// serve accepts sessions until the listener closes, then waits for every
// in-flight session to finish — a drain, not an abandonment, so a worker
// asked to stop mid-run still answers its parent's final frames.
func serve(ln net.Listener, errw io.Writer) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(c *net.TCPConn) {
			defer wg.Done()
			addr := c.RemoteAddr()
			if err := core.ServeRemoteShards(c); err != nil {
				fmt.Fprintf(errw, "slackworker: session %s: %v\n", addr, err)
			} else {
				fmt.Fprintf(errw, "slackworker: session %s: done\n", addr)
			}
		}(c.(*net.TCPConn))
	}
}
