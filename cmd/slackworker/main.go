// Command slackworker hosts remote memory-hierarchy shards for a
// slacksim parent running with -remote-workers. It accepts TCP
// connections and serves one simulation session per connection: the
// parent ships the shard assignment and cache geometry in its handshake,
// so one worker binary serves any topology. A parent reconnecting after
// a connection failure resumes its session from the checkpoint it
// replays in the handshake, so a long run survives worker restarts.
//
//	slackworker -listen 127.0.0.1:7701
//	slacksim -workload fft -scheme S9 -remote-workers 127.0.0.1:7701
//
// SIGINT/SIGTERM stop the accept loop, let in-flight sessions drain, and
// exit 0. The listener sets SO_REUSEADDR, so a restarted worker (the
// recovery drill: kill -9 and relaunch under the same address) rebinds
// immediately instead of fighting TIME_WAIT.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"slacksim/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "slackworker:", err)
		os.Exit(1)
	}
}

func run(args []string, errw io.Writer) error {
	fs := flag.NewFlagSet("slackworker", flag.ContinueOnError)
	fs.SetOutput(errw)
	listen := fs.String("listen", "127.0.0.1:0", "address to accept slacksim parent connections on")
	heartbeat := fs.Duration("heartbeat", 0, "idle heartbeat interval when the parent's handshake doesn't set one (0 = 1s)")
	sessionDir := fs.String("session-dir", "", "persist each session's latest checkpoint under this directory (crash forensics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sessionDir != "" {
		if err := os.MkdirAll(*sessionDir, 0o755); err != nil {
			return err
		}
	}
	ln, err := listenReuse(*listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "slackworker: listening on %s\n", ln.Addr())

	var stopping atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()
	go func() {
		if _, ok := <-sigc; ok {
			stopping.Store(true)
			fmt.Fprintln(errw, "slackworker: signal — draining sessions")
			ln.Close()
		}
	}()

	opts := core.WorkerOptions{Heartbeat: *heartbeat, SessionDir: *sessionDir}
	err = serve(ln, errw, opts)
	if stopping.Load() {
		return nil
	}
	return err
}

// listenReuse binds with SO_REUSEADDR so a relaunched worker can retake
// an address whose previous owner just died mid-session (lingering
// sockets from the killed process must not block recovery).
func listenReuse(addr string) (net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	return lc.Listen(context.Background(), "tcp", addr)
}

// serve accepts sessions until the listener closes, then waits for every
// in-flight session to finish — a drain, not an abandonment, so a worker
// asked to stop mid-run still answers its parent's final frames.
func serve(ln net.Listener, errw io.Writer, opts core.WorkerOptions) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	var mu sync.Mutex
	logf := func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(errw, "slackworker: "+format+"\n", args...)
		mu.Unlock()
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(c *net.TCPConn) {
			defer wg.Done()
			addr := c.RemoteAddr()
			start := time.Now()
			so := opts
			so.Logf = logf
			if err := core.ServeRemoteShardsOpts(c, &so); err != nil {
				logf("session %s: %v", addr, err)
			} else {
				logf("session %s: done (%v)", addr, time.Since(start).Round(time.Millisecond))
			}
		}(c.(*net.TCPConn))
	}
}
