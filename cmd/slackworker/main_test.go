package main

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
	"slacksim/internal/remote"
	"slacksim/internal/workloads"
)

// TestServeSession drives one real simulation session through the
// worker's accept loop and checks the drain-on-close behavior.
func TestServeSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var errw bytes.Buffer
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(ln, &errw, core.WorkerOptions{}) }()

	wl, err := workloads.Get("fft")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(wl.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(prog, core.Config{
		NumCores: 2, CPU: cpu.DefaultConfig(), Cache: cache.DefaultConfig(2),
		RemoteShards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Init(m.Image(), 1); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.ParseScheme("CC")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunRemoteSharded(scheme, []remote.Transport{conn.(*net.TCPConn)})
	if err != nil {
		t.Fatalf("remote run through slackworker: %v", err)
	}
	if err := wl.Verify(m.Image(), res.Output, 1); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// Closing the listener ends the accept loop; serve must still return
	// (the session above already drained).
	ln.Close()
	if err := <-serveDone; err == nil {
		t.Error("serve returned nil after listener close")
	}
	if !strings.Contains(errw.String(), "done") {
		t.Errorf("worker log missing session completion:\n%s", errw.String())
	}
}
